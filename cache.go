package grappolo

import (
	"context"
	"fmt"
	"time"

	"grappolo/internal/core"
	"grappolo/internal/dynamic"
	"grappolo/internal/rescache"
)

// Cache serves repeated detections across TIME the way the Batcher serves
// them across concurrent callers: a TTL + LRU result cache keyed by the
// graph's content identity and the backend's exact engine options, composed
// as a Detecter in front of a Pool, Batcher or Sharded backend (and behind
// a Guard). Back-to-back identical uploads — dashboard refreshes, retries,
// many tenants asking about the same public dataset — are served from the
// cache with ZERO engine runs; a warm hit into a recycled Result performs
// zero allocations, the same gate discipline as the rest of the serving
// stack.
//
// Correctness: lookups are keyed by the cheap sampled graph.Fingerprint,
// but no result is ever served (or displaced) on that evidence alone —
// every match is confirmed against the graph's exact full-content
// StrongHash, computed once per immutable Graph and memoized on it. A
// sampled-hash collision therefore degrades to an uncached detection
// (counted in CacheStats.Rejected), never to serving another graph's
// membership. Cached Results are deep-copied out on every hit, so callers
// receive the same ownership semantics as an unbatched call, bit-identical
// to the run that populated the entry.
//
// Delta tier (DeltaEdits): a miss whose fingerprint shape (vertex count,
// arc count, total weight) is within the configured edit budget of a cached
// entry is diffed against that entry's retained graph with one linear CSR
// merge-walk. If the request is reachable by at most DeltaEdits edge
// insertions (including weight increases), the delta is routed onto an
// incremental dynamic.Maintainer seeded from the cached membership — the
// paper's real-time future-work item as a serving-tier fast path — instead
// of a cold engine run. Such results are marked Result.Incremental: a valid
// clustering of the request's graph whose quality tracks incremental
// Louvain (re-anchored by full re-detections per DeltaRefreshFraction)
// rather than matching a cold run bit-for-bit. Deletions and rewires never
// route; they fall through to the backend.
//
// Memory: the cache retains each admitted graph and result (and any
// maintainer) and evicts least-recently-used entries once the estimated
// resident bytes exceed CacheBytes. A Cache is safe for concurrent use.
type Cache struct {
	backend Detecter
	pool    *Pool
	store   *rescache.Store
	opts    core.Options
}

// CacheStats are cumulative serving counters plus a residency snapshot.
type CacheStats struct {
	// Hits counts requests served straight from the cache (zero engine
	// runs, bit-identical result); Misses counts the rest.
	Hits, Misses int64
	// DeltaRouted counts misses served by the incremental delta tier
	// instead of a cold run.
	DeltaRouted int64
	// Evictions counts entries dropped by the byte budget; Expired counts
	// TTL drops.
	Evictions, Expired int64
	// Rejected counts sampled-fingerprint matches refused by the exact
	// strong-hash check — the cross-time collisions that are served
	// uncached instead of wrong.
	Rejected int64
	// Entries and Bytes snapshot current residency (Bytes is the eviction
	// estimate, not an allocator audit).
	Entries int
	Bytes   int64
}

// cacheConfig accumulates CacheOption applications.
type cacheConfig struct {
	ttl      time.Duration
	maxBytes int64
	delta    int
	refresh  float64
}

// CacheOption configures a Cache.
type CacheOption func(*cacheConfig) error

// CacheTTL bounds how long an entry may be served after admission (default:
// until evicted). d must be positive.
func CacheTTL(d time.Duration) CacheOption {
	return func(c *cacheConfig) error {
		if d <= 0 {
			return fmt.Errorf("grappolo: CacheTTL must be positive, got %v", d)
		}
		c.ttl = d
		return nil
	}
}

// CacheBytes bounds the cache's estimated resident bytes (graphs + results
// + maintainers); least-recently-used entries are evicted past it. The
// default is 256 MiB. n must be positive.
func CacheBytes(n int64) CacheOption {
	return func(c *cacheConfig) error {
		if n <= 0 {
			return fmt.Errorf("grappolo: CacheBytes must be positive, got %d", n)
		}
		c.maxBytes = n
		return nil
	}
}

// DeltaEdits enables the delta tier with an edge-edit budget: a miss within
// k edge insertions of a cached graph is served incrementally instead of
// cold. 0 (the default) disables delta routing. Requires a modularity,
// non-Async backend configuration — the incremental overlay maintains
// standard modularity.
func DeltaEdits(k int) CacheOption {
	return func(c *cacheConfig) error {
		if k < 0 {
			return fmt.Errorf("grappolo: negative DeltaEdits %d", k)
		}
		c.delta = k
		return nil
	}
}

// DeltaRefreshFraction sets the touched-vertex fraction at which a cached
// maintainer re-anchors quality with a full re-detection (default 0.25).
// Must be in (0, 1].
func DeltaRefreshFraction(f float64) CacheOption {
	return func(c *cacheConfig) error {
		if f <= 0 || f > 1 {
			return fmt.Errorf("grappolo: DeltaRefreshFraction must be in (0, 1], got %v", f)
		}
		c.refresh = f
		return nil
	}
}

// NewCache wraps backend — a *Pool, *Batcher or *Sharded — in a result
// cache. All traffic for the backend should route through the Cache (a
// detection that bypasses it is simply never cached). Configuration errors
// are returned, never coerced.
func NewCache(backend Detecter, copts ...CacheOption) (*Cache, error) {
	var pool *Pool
	switch b := backend.(type) {
	case *Pool:
		pool = b
	case *Batcher:
		pool = b.Pool()
	case *Sharded:
		pool = b.Pool()
	default:
		return nil, fmt.Errorf("grappolo: NewCache needs a *Pool, *Batcher or *Sharded backend, got %T", backend)
	}
	c := cacheConfig{maxBytes: 256 << 20, refresh: 0.25}
	for _, o := range copts {
		if o == nil {
			return nil, fmt.Errorf("grappolo: nil CacheOption")
		}
		if err := o(&c); err != nil {
			return nil, err
		}
	}
	if c.delta > 0 {
		if pool.opts.Objective == core.ObjCPM {
			return nil, fmt.Errorf("grappolo: DeltaEdits maintains modularity; CPM backends cannot delta-route")
		}
		if pool.opts.Async {
			return nil, fmt.Errorf("grappolo: DeltaEdits requires deterministic full runs; Async backends cannot delta-route")
		}
	}
	store := rescache.New(rescache.Options{
		TTL:        c.ttl,
		MaxBytes:   c.maxBytes,
		DeltaEdges: c.delta,
		Dynamic: dynamic.Options{
			Workers:         pool.opts.Workers,
			RefreshFraction: c.refresh,
			Full:            pool.opts.Defaults(),
		},
	})
	return &Cache{backend: backend, pool: pool, store: store, opts: pool.opts}, nil
}

// Pool returns the underlying engine pool (capacity, options) the cached
// backend serves from.
func (c *Cache) Pool() *Pool { return c.pool }

// Stats returns the cache's cumulative counters and residency snapshot.
func (c *Cache) Stats() CacheStats {
	s := c.store.Stats()
	return CacheStats{
		Hits: s.Hits, Misses: s.Misses, DeltaRouted: s.DeltaRouted,
		Evictions: s.Evictions, Expired: s.Expired, Rejected: s.Rejected,
		Entries: s.Entries, Bytes: s.Bytes,
	}
}

// Len returns the resident entry count.
func (c *Cache) Len() int { return c.store.Len() }

// Invalidate drops the cached entry for g's content, if resident — the hook
// streaming overlays use: once a NewStream seeded from g applies a batch,
// results detected for g no longer describe the live graph. Reports whether
// an entry was dropped.
func (c *Cache) Invalidate(g *Graph) bool {
	if g == nil {
		return false
	}
	return c.store.Remove(rescache.Key{FP: g.Fingerprint(), Opts: c.opts})
}

// InvalidateAll drops every entry and returns how many were resident.
func (c *Cache) InvalidateAll() int { return c.store.Clear() }

// Detect runs detection on g, serving from the cache when its exact content
// (and the backend's options) match a live entry, routing small edits
// incrementally when DeltaEdits is enabled, and falling through to the
// backend otherwise. The Result is always a fresh copy independent of the
// cache.
func (c *Cache) Detect(ctx context.Context, g *Graph) (*Result, error) {
	return c.DetectInto(ctx, g, nil)
}

// DetectInto is Detect recycling a caller-provided Result: a warm hit
// copies the cached result into res and performs zero allocations. A nil
// res allocates a fresh Result. Cancellation follows the backend's
// contract; an exact hit never blocks and never fails.
func (c *Cache) DetectInto(ctx context.Context, g *Graph, res *Result) (*Result, error) {
	if g == nil {
		return nil, ErrNilGraph
	}
	if ctx == nil {
		ctx = context.Background()
	}
	key := rescache.Key{FP: g.Fingerprint(), Opts: c.opts}
	strong := g.StrongHash()
	if cached, ok := c.store.Get(key, strong); ok {
		return core.CopyResultInto(res, cached), nil
	}
	if out, handled, err := c.store.DeltaDetect(ctx, key, g, strong); handled {
		if err != nil {
			return nil, err
		}
		return core.CopyResultInto(res, out), nil
	}
	out, err := c.backend.DetectInto(ctx, g, res)
	if err != nil {
		return nil, err
	}
	c.store.Put(key, strong, g, core.CopyResultInto(nil, out), nil)
	return out, nil
}

// String describes the cache for logs.
func (c *Cache) String() string {
	s := c.store.Stats()
	return fmt.Sprintf("grappolo.Cache(entries=%d, bytes=%d, hits=%d, misses=%d, delta=%d)",
		s.Entries, s.Bytes, s.Hits, s.Misses, s.DeltaRouted)
}
