package grappolo

import (
	"context"

	"grappolo/internal/core"
)

// A Detector runs parallel Louvain community detection with one validated
// configuration. It owns a reusable engine whose scratch memory (phase
// arrays, per-worker accumulators, coloring and rebuild buffers, pooled
// coarse graphs) is sized by high-water mark and recycled across Detect
// calls, so repeated detections on same-shaped graphs perform zero scratch
// allocations.
//
// A Detector is NOT safe for concurrent use: concurrent Detect calls need
// one Detector each, or a Pool, which manages a bounded set of engines and
// serves concurrent calls with size-class reuse.
type Detector struct {
	eng *core.Engine
}

// New validates opts and returns a Detector. Invalid values and invalid
// combinations — a negative worker count, CPM without a positive gamma, CPM
// combined with vertex following, Async combined with Coloring — return an
// error; nothing is silently coerced. No options at all is valid and yields
// the paper's baseline configuration.
func New(opts ...Option) (*Detector, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	return &Detector{eng: core.NewEngine(o)}, nil
}

// Detect runs the full pipeline on g and returns a fresh Result. The
// context is honored cooperatively: cancellation is polled at the level
// loop and phase-sweep boundaries and observed once per chunk inside the
// sweeps — where detection time is spent — without any branch in the
// per-vertex hot loops. An in-flight preprocessing step (vertex following,
// coloring, rebuild) runs to completion first, so the worst-case latency is
// one such step, not one chunk. On cancellation the Detector remains valid
// and keeps its warmed scratch.
//
// The returned Result is independent of the Detector and stays valid across
// later calls. Serving loops that want warm calls to allocate nothing
// should use DetectInto.
func (d *Detector) Detect(ctx context.Context, g *Graph) (*Result, error) {
	if g == nil {
		return nil, ErrNilGraph
	}
	return d.eng.RunCtx(ctx, g)
}

// DetectInto is Detect recycling a previous Result: res's membership,
// phase, trace and hierarchy storage is reused (the returned pointer is res
// itself), so a warmed Detector re-running a same-shaped graph allocates
// nothing at all. The previous contents of res are invalidated; a nil res
// allocates a fresh Result. On cancellation it returns (nil, ctx.Err()) and
// res's contents are undefined, but its storage may be passed to a later
// call.
func (d *Detector) DetectInto(ctx context.Context, g *Graph, res *Result) (*Result, error) {
	if g == nil {
		return nil, ErrNilGraph
	}
	return d.eng.RunIntoCtx(ctx, g, res)
}

// Detect is the one-shot convenience form: it builds a throwaway Detector
// per call, so every invocation starts cold. Callers that cluster
// repeatedly should hold a Detector (or a Pool) and reuse it.
func Detect(ctx context.Context, g *Graph, opts ...Option) (*Result, error) {
	d, err := New(opts...)
	if err != nil {
		return nil, err
	}
	return d.Detect(ctx, g)
}
