//go:build race

package grappolo_test

// raceEnabled reports that the race detector is active; allocation-
// regression tests skip themselves (instrumentation allocates).
const raceEnabled = true
