package grappolo_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"

	"grappolo"
	"grappolo/internal/distributed"
	"grappolo/internal/generate"
	"grappolo/internal/graph"
	"grappolo/internal/seq"
)

var _ grappolo.Detecter = (*grappolo.Sharded)(nil)

// scrambledSuiteGraph returns a Small suite graph with its vertex ids
// randomly permuted — the adversarial case for any contiguous-range
// partition, since planted communities no longer align with id ranges.
func scrambledSuiteGraph(t *testing.T, in generate.Input, gseed, pseed uint64) *grappolo.Graph {
	t.Helper()
	g := generate.MustGenerate(in, generate.Small, gseed, 2)
	scrambled, err := graph.Relabel(g, graph.RandomPermutation(g.N(), pseed))
	if err != nil {
		t.Fatal(err)
	}
	return scrambled
}

func newSharded(t *testing.T, poolSize int, sopts ...grappolo.ShardOption) *grappolo.Sharded {
	t.Helper()
	pool, err := grappolo.NewPool(poolSize, grappolo.Workers(2))
	if err != nil {
		t.Fatal(err)
	}
	s, err := grappolo.NewSharded(pool, sopts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestShardedRecoveryVsSharedMemory(t *testing.T) {
	// The acceptance bar of the scale-out tier: on a suite graph with
	// scrambled vertex ids, the sharded path with >= 2 exchange rounds must
	// land within 2% of the shared-memory Detector's modularity AND strictly
	// beat the drop-cut-edges distributed emulation. All inputs are seeded,
	// so the margins are deterministic.
	g := scrambledSuiteGraph(t, generate.CNR, 0, 13)
	det, err := grappolo.New(grappolo.Workers(2))
	if err != nil {
		t.Fatal(err)
	}
	shared, err := det.Detect(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	s := newSharded(t, 4, grappolo.WithShards(4), grappolo.WithExchangeRounds(2))
	res, err := s.Detect(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if q := seq.Modularity(g, res.Membership, 1); math.Abs(q-res.Modularity) > 1e-9 {
		t.Fatalf("reported Q=%v but membership scores %v", res.Modularity, q)
	}
	if res.Modularity < shared.Modularity*0.98 {
		t.Fatalf("sharded Q=%.4f below 98%% of shared-memory Q=%.4f", res.Modularity, shared.Modularity)
	}
	emu, err := distributed.Run(g, distributed.Options{Parts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Modularity <= emu.Modularity {
		t.Fatalf("sharded Q=%.4f does not beat the cut-edge-dropping emulation Q=%.4f",
			res.Modularity, emu.Modularity)
	}
	t.Logf("shared=%.4f sharded=%.4f emulation=%.4f", shared.Modularity, res.Modularity, emu.Modularity)
}

func TestShardedDeterministicAndReusable(t *testing.T) {
	g := scrambledSuiteGraph(t, generate.MG1, 1, 5)
	s := newSharded(t, 3, grappolo.WithShards(5), grappolo.WithPartition(grappolo.PartitionArcs))
	ref, err := s.Detect(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential reuse of the same Sharded (and its pool) must be
	// bit-identical, and concurrent calls must be safe and identical too.
	var wg sync.WaitGroup
	results := make([]*grappolo.Result, 4)
	errs := make([]error, 4)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Detect(context.Background(), g)
		}(i)
	}
	wg.Wait()
	for i, res := range results {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if res.Modularity != ref.Modularity || res.NumCommunities != ref.NumCommunities {
			t.Fatalf("call %d diverged: Q=%v/%v", i, res.Modularity, ref.Modularity)
		}
		for v := range res.Membership {
			if res.Membership[v] != ref.Membership[v] {
				t.Fatalf("call %d: membership diverges at vertex %d", i, v)
			}
		}
	}
	if led := s.Stats().Led; led == 0 {
		t.Fatal("no engine checkouts recorded in pool stats")
	}
}

func TestShardedBehindGuard(t *testing.T) {
	// Sharded must slot into the resilience tier like any other backend.
	g := scrambledSuiteGraph(t, generate.RGG, 0, 3)
	s := newSharded(t, 2, grappolo.WithShards(3))
	want, err := s.Detect(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	guard, err := grappolo.NewGuard(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := guard.Detect(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if got.Modularity != want.Modularity || got.NumCommunities != want.NumCommunities {
		t.Fatalf("guarded sharded detection diverged: Q=%v/%v", got.Modularity, want.Modularity)
	}
	if stats := guard.Stats(); stats.Led == 0 {
		t.Fatal("guard stats do not surface the sharded pool's counters")
	}
}

func TestShardedDetectInto(t *testing.T) {
	g := scrambledSuiteGraph(t, generate.RGG, 0, 3)
	s := newSharded(t, 2)
	res, err := s.Detect(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	// Recycling a stale Result must fully overwrite it.
	stale := &grappolo.Result{Degraded: true, TotalIterations: -1}
	got, err := s.DetectInto(context.Background(), g, stale)
	if err != nil {
		t.Fatal(err)
	}
	if got != stale {
		t.Fatal("DetectInto did not recycle the provided Result")
	}
	if got.Degraded || got.TotalIterations <= 0 {
		t.Fatalf("stale fields not reset: %+v", got)
	}
	if got.Modularity != res.Modularity {
		t.Fatalf("recycled detection diverged: Q=%v/%v", got.Modularity, res.Modularity)
	}
}

func TestShardedValidation(t *testing.T) {
	if _, err := grappolo.NewSharded(nil); err == nil {
		t.Fatal("nil pool accepted")
	}
	pool, err := grappolo.NewPool(2, grappolo.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		opt  grappolo.ShardOption
	}{
		{"zero shards", grappolo.WithShards(0)},
		{"negative rounds", grappolo.WithExchangeRounds(-1)},
		{"unknown mode", grappolo.WithPartition(grappolo.PartitionMode(42))},
		{"nil option", nil},
	} {
		if _, err := grappolo.NewSharded(pool, tc.opt); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
	cpmPool, err := grappolo.NewPool(2, grappolo.Workers(1), grappolo.CPM(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := grappolo.NewSharded(cpmPool); err == nil {
		t.Fatal("CPM pool accepted")
	}
	s, err := grappolo.NewSharded(pool)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Detect(context.Background(), nil); !errors.Is(err, grappolo.ErrNilGraph) {
		t.Fatalf("nil graph: err = %v, want ErrNilGraph", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := generate.MustGenerate(generate.RGG, generate.Small, 0, 1)
	if _, err := s.Detect(ctx, g); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled ctx: err = %v, want context.Canceled", err)
	}
}

// BenchmarkShardedDetect measures the sharded tier across a shards ×
// exchange-rounds grid on the suite RGG input with scrambled vertex ids
// (the partition-adversarial case): the cost of more shards is more
// boundary, the cost of more rounds is more sweeps, and the reported
// modularity shows what each point buys. Engines are pooled and warmed, so
// steady-state serving is what is measured.
func BenchmarkShardedDetect(b *testing.B) {
	base := generate.MustGenerate(generate.RGG, generate.ScaleFromEnv(), 0, 0)
	g, err := graph.Relabel(base, graph.RandomPermutation(base.N(), 17))
	if err != nil {
		b.Fatal(err)
	}
	for _, shards := range []int{2, 4, 8} {
		for _, rounds := range []int{0, 2} {
			b.Run(fmt.Sprintf("shards=%d/rounds=%d", shards, rounds), func(b *testing.B) {
				pool, err := grappolo.NewPool(runtime.GOMAXPROCS(0), grappolo.Workers(1))
				if err != nil {
					b.Fatal(err)
				}
				s, err := grappolo.NewSharded(pool,
					grappolo.WithShards(shards), grappolo.WithExchangeRounds(rounds))
				if err != nil {
					b.Fatal(err)
				}
				ctx := context.Background()
				res, err := s.Detect(ctx, g) // warm every engine size class
				if err != nil {
					b.Fatal(err)
				}
				q := res.Modularity
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if res, err = s.DetectInto(ctx, g, res); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(q, "Q")
			})
		}
	}
}
