package grappolo

import (
	"context"
	"fmt"

	"grappolo/internal/core"
	"grappolo/internal/dynamic"
)

// ErrBadEdgeWeight is returned by Stream.AddEdge when the edge weight is
// not a positive finite number (NaN, ±Inf, zero or negative). A bad weight
// is rejected before it can touch the overlay — silently coercing it, as
// builders do for offline input, would corrupt the live modularity
// bookkeeping every later batch builds on.
var ErrBadEdgeWeight = dynamic.ErrBadWeight

// Stream maintains communities under a live stream of edge insertions — the
// paper's future-work item (i), "community detection in real-time". Edge
// arrivals are buffered into batches; applying a batch re-decides only the
// vertices whose neighborhoods changed, seeded from the existing
// assignment, and a full re-detection (run on a pooled engine, scratch
// recycled across refreshes) re-anchors quality once enough of the graph
// has drifted.
//
// A Stream is not safe for concurrent use.
type Stream struct {
	m *dynamic.Maintainer
}

// StreamOption configures a Stream's incremental-maintenance policy.
type StreamOption func(*dynamic.Options) error

// BatchSize sets how many buffered edges are applied at once (default
// 1024). Flush applies a partial batch early.
func BatchSize(n int) StreamOption {
	return func(o *dynamic.Options) error {
		if n <= 0 {
			return fmt.Errorf("grappolo: BatchSize must be positive, got %d", n)
		}
		o.BatchSize = n
		return nil
	}
}

// RefreshFraction sets the touched-vertex fraction that triggers a full
// re-detection (default 0.25). Must be in (0, 1].
func RefreshFraction(f float64) StreamOption {
	return func(o *dynamic.Options) error {
		if f <= 0 || f > 1 {
			return fmt.Errorf("grappolo: RefreshFraction must be in (0, 1], got %v", f)
		}
		o.RefreshFraction = f
		return nil
	}
}

// LocalRounds sets the number of local-move rounds applied to the affected
// frontier per batch (default 2).
func LocalRounds(n int) StreamOption {
	return func(o *dynamic.Options) error {
		if n <= 0 {
			return fmt.Errorf("grappolo: LocalRounds must be positive, got %d", n)
		}
		o.LocalRounds = n
		return nil
	}
}

// NewStream seeds a stream with an initial graph and runs the first full
// detection. Detection options (the same Option values New accepts)
// configure the full re-detection runs; stream options configure batching
// and refresh policy. The incremental overlay maintains standard
// modularity, so CPM and Async configurations are rejected.
func NewStream(seed *Graph, detectOpts []Option, streamOpts ...StreamOption) (*Stream, error) {
	o, err := buildOptions(detectOpts)
	if err != nil {
		return nil, err
	}
	if o.Objective == core.ObjCPM {
		return nil, fmt.Errorf("grappolo: streaming maintains modularity; CPM is not supported")
	}
	if o.Async {
		return nil, fmt.Errorf("grappolo: streaming requires deterministic full runs; Async is not supported")
	}
	do := dynamic.Options{Workers: o.Workers, Full: o.Defaults()}
	for _, so := range streamOpts {
		if so == nil {
			return nil, fmt.Errorf("grappolo: nil StreamOption")
		}
		if err := so(&do); err != nil {
			return nil, err
		}
	}
	return &Stream{m: dynamic.New(seed, do)}, nil
}

// AddEdge buffers an undirected edge insertion; endpoints beyond the
// current vertex set grow it (new vertices start as singleton communities).
// The edge is applied once the buffer reaches BatchSize, or on Flush.
// Weights that are not positive finite numbers are rejected with
// ErrBadEdgeWeight.
func (s *Stream) AddEdge(u, v int32, w float64) error { return s.m.AddEdge(u, v, w) }

// AddEdgeCtx is AddEdge under a context: if buffering crosses BatchSize,
// the triggered batch apply (and any full re-detection it escalates to)
// honors ctx. See FlushCtx for the failure contract.
func (s *Stream) AddEdgeCtx(ctx context.Context, u, v int32, w float64) error {
	return s.m.AddEdgeCtx(ctx, u, v, w)
}

// Flush applies all buffered edges and runs the incremental update (or a
// full re-detection if drift crossed the refresh fraction). A non-nil
// error comes from the full re-detection; see FlushCtx.
func (s *Stream) Flush() error { return s.m.FlushCtx(context.Background()) }

// FlushCtx is Flush honoring ctx during the full re-detection a flush may
// escalate to. On error the buffered edges HAVE been applied to the overlay
// (membership for new vertices is their singleton seed), but the refresh is
// still owed: drift accounting is retained, so the next successful flush
// re-runs it. Incremental-only flushes cannot fail.
func (s *Stream) FlushCtx(ctx context.Context) error { return s.m.FlushCtx(ctx) }

// OnApply registers f to run after every successfully applied batch —
// including the full re-detections flushes escalate to. Serving layers use
// it as an invalidation hook: once the overlay drifts from the seed graph,
// cached results for that seed no longer describe the live stream (e.g.
// Cache.Invalidate(seed)). Must be set before edges are applied; f runs on
// the flushing goroutine.
func (s *Stream) OnApply(f func()) { s.m.SetOnApply(f) }

// N returns the current vertex count.
func (s *Stream) N() int { return s.m.N() }

// Membership returns the current community assignment. The slice is live —
// it changes on the next Flush; copy it to retain a snapshot.
func (s *Stream) Membership() []int32 { return s.m.Membership() }

// Modularity returns the modularity of the current assignment on the live
// overlay.
func (s *Stream) Modularity() float64 { return s.m.Modularity() }

// Snapshot materializes the current graph as an immutable Graph, e.g. for
// re-scoring or offline comparison.
func (s *Stream) Snapshot() *Graph { return s.m.Snapshot() }

// FullRuns reports how many full re-detections have happened (including the
// seeding one); BatchApplies how many incremental batches were applied.
func (s *Stream) FullRuns() int     { return s.m.FullRuns() }
func (s *Stream) BatchApplies() int { return s.m.BatchApplies() }
