package grappolo_test

import (
	"context"
	"runtime"
	"sync"
	"testing"

	"grappolo"
	"grappolo/internal/generate"
)

// TestPoolDetectWarmZeroAllocs extends the engine-allocation regression
// gate to the serving path: once a pooled engine has served a graph shape
// and the caller recycles its Result, a further same-shape DetectInto —
// permit acquisition, size-class engine checkout, the full detection
// pipeline, result write-back and engine return included — performs ZERO
// allocations. Single worker: the goroutine spawns of multi-worker sweeps
// inherently allocate.
func TestPoolDetectWarmZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	g := generate.MustGenerate(generate.RGG, generate.Small, 0, 1)
	pool, err := grappolo.NewPool(1, grappolo.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	res, err := pool.Detect(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	res, err = pool.DetectInto(ctx, g, res) // second warm pass settles the arenas
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		res, err = pool.DetectInto(ctx, g, res)
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Errorf("warm same-shape Pool.DetectInto allocates %v times per request, want 0", allocs)
	}
	if res.NumCommunities <= 1 || res.Modularity <= 0 {
		t.Fatalf("degenerate result nc=%d Q=%v", res.NumCommunities, res.Modularity)
	}
}

// BenchmarkPoolDetect drives a warm Pool from parallel requesters — the
// serving-shell steady state. allocs/op is the serving-path extension of
// the engine-allocation regression gate: with per-goroutine result
// recycling (DetectInto) warm same-shape requests report 0 allocs/op at
// one worker per engine.
func BenchmarkPoolDetect(b *testing.B) {
	g := generate.MustGenerate(generate.RGG, generate.ScaleFromEnv(), 0, 0)
	newPool := func(b *testing.B, workers int) *grappolo.Pool {
		pool, err := grappolo.NewPool(runtime.GOMAXPROCS(0),
			grappolo.Workers(workers),
			grappolo.VertexFollowing(),
			grappolo.Coloring(grappolo.Distance1),
			grappolo.ColoringCutoff(512))
		if err != nil {
			b.Fatal(err)
		}
		// Warm every engine the parallel phase can check out at once.
		ctx := context.Background()
		var wg sync.WaitGroup
		for i := 0; i < pool.Size(); i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := pool.Detect(ctx, g); err != nil {
					b.Error(err)
				}
			}()
		}
		wg.Wait()
		return pool
	}
	b.Run("warm-w1", func(b *testing.B) {
		pool := newPool(b, 1)
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			var res *grappolo.Result
			var err error
			for pb.Next() {
				if res, err = pool.DetectInto(ctx, g, res); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
}
