module grappolo

go 1.24
