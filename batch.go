package grappolo

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"grappolo/internal/core"
	"grappolo/internal/faults"
	"grappolo/internal/graph"
)

// Batcher coalesces concurrent Detect calls on the same graph into one
// engine run fanned back out to every caller — the serving-layer analog of
// the paper's core idea that one well-parallelized run beats many redundant
// ones. Duplicate traffic (dashboards, retries, many users asking about the
// same dataset) is the common overload shape for a clustering service, and
// without coalescing a Pool runs the identical detection once per caller.
//
// Requests are grouped by a cheap structural fingerprint of the input graph
// (pointer-identity fast path, then exact vertex/arc counts and weight sum
// plus a sampled CSR content hash — see the caveat below) and by
// configuration: a Batcher fronts exactly one Pool, so every request it
// admits shares that pool's validated options and only the graph identity
// varies. The first arrival for a fingerprint becomes the batch LEADER: it
// queues for an engine through the pool's FIFO-fair admission, runs once,
// and the shared Result is copied out to each coalesced FOLLOWER (and to
// the leader itself), so every caller receives an independent Result with
// exactly the ownership semantics of an unbatched call.
//
// Fairness and cancellation: the leader inherits the pool's
// admission-order guarantee — batches are served in leader arrival order
// under overload — and followers piggyback on their leader's slot without
// consuming permits. A follower canceled while waiting returns its own
// ctx.Err() immediately and never leaks a permit; a LEADER canceled
// mid-flight aborts only its own call — surviving followers transparently
// retry, and the first retrier becomes the new leader (re-entering
// admission at the back of the queue).
//
// Correctness of coalescing: the sampled fingerprint keeps batch LOOKUP
// O(1) in graph size, but it is only the first-pass filter — before any
// request is served a shared result, its graph's exact full-content hash
// (Graph.StrongHash, computed once per immutable graph and memoized) is
// compared with the leader's. Two large graphs that agree on vertex count,
// arc count, total weight and every sampled arc but differ elsewhere
// therefore land in the same batch slot yet are NEVER served each other's
// result: the mismatching follower diverts to its own uncoalesced pool
// run. Collisions cost a batching opportunity, not correctness.
//
// A Batcher is safe for concurrent use by multiple goroutines.
type Batcher struct {
	pool *Pool

	mu       sync.Mutex
	inflight map[graph.Fingerprint]*batch
	free     *batch // recycled batch records (and their pooled shared Results)

	joins    atomic.Int64 // followers attached (test observability)
	batched  atomic.Int64 // followers actually served by a shared run
	canceled atomic.Int64
	diverted atomic.Int64 // sampled-collision followers served uncoalesced
}

// errDetectPanicked is fanned out to followers when a batch's engine run
// panics; the panic itself propagates through the leader, preserving the
// unbatched contract for the call that actually drove the engine. It
// matches ErrEngineFault (via EngineFaultError.Is), so followers and the
// Guard classify a leader's engine fault uniformly.
var errDetectPanicked error = &EngineFaultError{Panic: "batched engine run panicked in its leader"}

// batch is one in-flight coalesced run. Its mutex guards the follower list
// and lifecycle flags; the Batcher mutex guards only the inflight table and
// free list, and the two are never held together except table-side (b.mu →
// ba.mu) when initializing a recycled record.
type batch struct {
	mu        sync.Mutex
	key       graph.Fingerprint
	strong    uint64 // leader graph's exact content hash; joiners must match
	sealed    bool   // no more joiners; set when the outcome is fanned out (and while free-listed)
	followers []*follower
	shared    *Result // pooled run target, reused across generations
	next      *batch  // Batcher free list
}

// follower is one coalesced waiter. Delivery is arbitrated by the state
// word: the sealer claims a follower before copying into its res, a
// canceling waiter withdraws by claiming it first. Exactly one of out/err
// is set before ready is signaled, and ready is signaled for every CLAIMED
// follower — a canceler that loses the claim race waits for that signal
// (one copy, not the whole fan-out) so its res is never written after it
// returns.
type follower struct {
	state atomic.Int32  // followerWaiting → followerClaimed | followerCanceled
	ready chan struct{} // cap 1, signaled once iff claimed
	res   *Result       // caller-provided recycling target (may be nil)
	out   *Result
	err   error
}

const (
	followerWaiting int32 = iota
	followerClaimed
	followerCanceled
)

// NewBatcher returns a Batcher coalescing duplicate requests in front of
// pool. The pool remains usable directly — only traffic routed through the
// Batcher is coalesced.
func NewBatcher(pool *Pool) *Batcher {
	if pool == nil {
		panic("grappolo: NewBatcher requires a Pool")
	}
	return &Batcher{pool: pool, inflight: make(map[graph.Fingerprint]*batch)}
}

// Pool returns the pool the Batcher serves from.
func (b *Batcher) Pool() *Pool { return b.pool }

// Stats returns cumulative serving counters: the underlying pool's
// admission counters plus the Batcher's coalescing counters. Led is the
// number of engine runs, so (Batched+Led) completions against Led runs is
// the coalescing win.
func (b *Batcher) Stats() PoolStats {
	s := b.pool.Stats()
	s.Batched = b.batched.Load()
	s.Canceled += b.canceled.Load()
	return s
}

// Detect runs detection on g, coalescing with any identical in-flight
// request, and returns a fresh Result independent of the Batcher. See
// Detector.Detect for the cancellation contract.
func (b *Batcher) Detect(ctx context.Context, g *Graph) (*Result, error) {
	return b.DetectInto(ctx, g, nil)
}

// DetectInto is Detect recycling a caller-provided Result: the shared batch
// outcome is copied into res (grown only on shape change), so a warm
// same-shape request stream allocates nothing for leaders and O(1) per
// follower. A nil res allocates a fresh Result. On cancellation it returns
// (nil, ctx.Err()) and res's contents are undefined, but its storage may be
// passed to a later call — the same contract as Pool.DetectInto.
func (b *Batcher) DetectInto(ctx context.Context, g *Graph, res *Result) (*Result, error) {
	if g == nil {
		return nil, ErrNilGraph
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// Both hashes are memoized on the Graph itself (computed at most once
	// per immutable graph, shared by every Batcher and Cache that sees it),
	// so a warm serving loop — even one alternating between several resident
	// graphs — pays two atomic loads here, no hashing and no allocation.
	key := g.Fingerprint()
	strong := g.StrongHash()
	for {
		out, err, retry := b.once(ctx, g, key, strong, res)
		if !retry {
			return out, err
		}
		// The batch this request raced with is already sealed (it completed,
		// or its leader was canceled out from under its followers). Check our
		// own context, then take a fresh pass — becoming the new leader if
		// no identical request is in flight anymore.
		if err := ctx.Err(); err != nil {
			b.canceled.Add(1)
			return nil, err
		}
	}
}

// once makes a single lead-or-follow attempt. retry means the observed
// batch was already sealed and the caller should re-resolve.
func (b *Batcher) once(ctx context.Context, g *Graph, key graph.Fingerprint, strong uint64, res *Result) (out *Result, err error, retry bool) {
	b.mu.Lock()
	ba := b.inflight[key]
	if ba == nil {
		ba = b.takeBatch(key, strong)
		b.inflight[key] = ba
		b.mu.Unlock()
		return b.lead(ctx, g, ba, res)
	}
	b.mu.Unlock()
	return b.follow(ctx, g, ba, key, strong, res)
}

// takeBatch pops a recycled batch record (or allocates one) and arms it for
// key. Caller holds b.mu; the nested ba.mu acquisition (b.mu → ba.mu) is
// safe because no code path holds ba.mu while taking b.mu.
func (b *Batcher) takeBatch(key graph.Fingerprint, strong uint64) *batch {
	ba := b.free
	if ba == nil {
		ba = &batch{}
	} else {
		b.free = ba.next
		ba.next = nil
	}
	// Arm under ba.mu: a stale joiner from a previous generation still
	// holding this pointer must observe either sealed==true (and retry) or
	// the new key — never a torn mix.
	ba.mu.Lock()
	ba.key = key
	ba.strong = strong
	ba.sealed = false
	ba.mu.Unlock()
	return ba
}

// lead runs the batch on the pool and fans the outcome out. The leader's
// own result is copied from the shared run target before the record is
// recycled, so the caller owns it outright.
func (b *Batcher) lead(ctx context.Context, g *Graph, ba *batch, res *Result) (*Result, error, bool) {
	completed := false
	defer func() {
		if !completed {
			// The engine run panicked. Seal the batch so followers get an
			// error instead of waiting forever, then let the panic continue
			// through the leader — the unbatched behavior for the caller
			// whose goroutine drove the engine. The record is not recycled:
			// after an engine panic its shared Result is suspect.
			b.seal(ba, errDetectPanicked)
		}
	}()
	faults.Maybe(faults.BatchLead)
	runRes, runErr := b.pool.DetectInto(ctx, g, ba.shared)
	completed = true
	if runErr == nil {
		ba.shared = runRes
	}
	b.seal(ba, runErr)
	if runErr != nil {
		// The leader's own context failed the run; its followers retry under
		// their own contexts via the cancellation error fanned out by seal.
		b.recycle(ba)
		return nil, runErr, false
	}
	out := core.CopyResultInto(res, ba.shared)
	b.recycle(ba)
	return out, nil, false
}

// seal removes ba from the inflight table (no more joiners) and delivers
// the outcome to every follower that has not withdrawn. The O(membership)
// copies run OUTSIDE both mutexes — sealing only holds ba.mu long enough
// to flip the flag, so joins of other generations and cancellations are
// never blocked behind fan-out copy work. Per-follower claim arbitration
// (see follower) keeps the copies race-free against cancellation.
func (b *Batcher) seal(ba *batch, runErr error) {
	b.mu.Lock()
	if b.inflight[ba.key] == ba {
		delete(b.inflight, ba.key)
	}
	b.mu.Unlock()
	ba.mu.Lock()
	ba.sealed = true
	followers := ba.followers // frozen: no joins after sealed
	ba.mu.Unlock()
	for _, f := range followers {
		if !f.state.CompareAndSwap(followerWaiting, followerClaimed) {
			continue // withdrew first; its res must not be touched
		}
		if runErr != nil {
			f.err = runErr
		} else {
			f.out = core.CopyResultInto(f.res, ba.shared)
		}
		f.ready <- struct{}{}
	}
}

// recycle returns a sealed batch record (and its pooled shared Result) to
// the free list. sealed stays true while free-listed, so stale joiners
// retry rather than attach to a dormant record.
func (b *Batcher) recycle(ba *batch) {
	ba.mu.Lock()
	for i := range ba.followers {
		ba.followers[i] = nil
	}
	ba.followers = ba.followers[:0]
	ba.mu.Unlock()
	b.mu.Lock()
	ba.next = b.free
	b.free = ba
	b.mu.Unlock()
}

// follow joins an in-flight batch and waits for its outcome or ctx.
func (b *Batcher) follow(ctx context.Context, g *Graph, ba *batch, key graph.Fingerprint, strong uint64, res *Result) (*Result, error, bool) {
	f := &follower{ready: make(chan struct{}, 1), res: res}
	ba.mu.Lock()
	if ba.sealed || ba.key != key {
		// Sealed (or already recycled for another graph) between the table
		// lookup and the join — re-resolve.
		ba.mu.Unlock()
		return nil, nil, true
	}
	if ba.strong != strong {
		// Sampled-fingerprint collision: this graph matches the leader's on
		// every sampled arc but not in full content. Joining would serve it
		// the leader's result for a DIFFERENT graph, so divert to a private
		// uncoalesced run instead — correctness over the batching win.
		ba.mu.Unlock()
		b.diverted.Add(1)
		out, err := b.pool.DetectInto(ctx, g, res)
		return out, err, false
	}
	ba.followers = append(ba.followers, f)
	ba.mu.Unlock()
	b.joins.Add(1)
	select {
	case <-f.ready:
		if f.err == nil {
			// Batched counts requests actually SERVED by a shared run; a
			// follower whose leader dies retries and is counted by whatever
			// path finally serves it, so Batched+Led sums to completions.
			b.batched.Add(1)
			return f.out, nil, false
		}
		if errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded) {
			// The LEADER was canceled, not this follower. Retry under our
			// own (still live, checked by the retry loop) context.
			return nil, nil, true
		}
		return nil, f.err, false
	case <-ctx.Done():
		if !f.state.CompareAndSwap(followerWaiting, followerCanceled) {
			// The sealer claimed us concurrently and is (or will be)
			// writing res; wait out that single delivery — bounded by one
			// copy, unlike the fan-out as a whole — so res is quiescent by
			// the time the caller sees the cancellation return.
			<-f.ready
		}
		b.canceled.Add(1)
		return nil, ctx.Err(), false
	}
}
