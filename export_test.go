package grappolo

import "context"

// Test hooks: the fairness and coalescing tests need to park the pool's
// engines deterministically (so requests pile up in a known admission
// order) and to observe the admission queue. Compiled into the package only
// under test.

// HoldEnginePermit takes one of p's engine permits directly, queuing FIFO
// like a request would, without running anything. Pair with
// ReleaseEnginePermit.
func (p *Pool) HoldEnginePermit(ctx context.Context) error { return p.sem.Acquire(ctx) }

// ReleaseEnginePermit returns a permit taken by HoldEnginePermit.
func (p *Pool) ReleaseEnginePermit() { p.sem.Release() }

// QueuedWaiters returns the number of requests currently queued for an
// engine (canceled entries excluded).
func (p *Pool) QueuedWaiters() int { return p.sem.QueueLen() }

// AvailablePermits returns the number of free engine permits.
func (p *Pool) AvailablePermits() int { return p.sem.Available() }

// JoinedFollowers returns the number of followers that have ATTACHED to a
// batch so far (PoolStats.Batched counts only followers actually served by
// a shared run, which happens later — tests choreographing a pile-up need
// the attach-time signal).
func (b *Batcher) JoinedFollowers() int64 { return b.joins.Load() }

// DivertedFollowers returns how many would-be followers were refused by the
// strong-hash check (sampled-fingerprint collision with the in-flight
// leader's graph) and served by a private uncoalesced pool run instead.
func (b *Batcher) DivertedFollowers() int64 { return b.diverted.Load() }

// IdleEngines returns the number of engines currently parked in the idle
// list — the quarantine tests' proof that a panicked engine was dropped
// (its slot stays empty until a later request lazily re-creates one).
func (p *Pool) IdleEngines() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle)
}

// HoldAdmission parks one of the Guard's admission slots (queuing FIFO
// like a request would), so tests can pile requests up at known queue
// depths. Pair with ReleaseAdmission.
func (gd *Guard) HoldAdmission(ctx context.Context) error { return gd.admit.Acquire(ctx) }

// ReleaseAdmission returns a slot taken by HoldAdmission.
func (gd *Guard) ReleaseAdmission() { gd.admit.Release() }

// AdmissionSlots returns the Guard's concurrent-admission capacity.
func (gd *Guard) AdmissionSlots() int { return gd.admit.Cap() }
