package grappolo_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"grappolo"
	"grappolo/internal/graph"
)

// badGraph builds a structurally corrupt graph: FromCSR with check=false
// accepts an adjacency entry far out of the vertex range, which a later
// engine sweep indexes into a vertex-sized array — a natural, untagged way
// to make an engine run panic. Tests using it MUST configure Workers(1):
// with one worker the parallel sweeps run inline on the calling goroutine,
// so the panic unwinds through the serving stack where recover works,
// instead of crashing the process from a worker goroutine.
func badGraph(t *testing.T) *grappolo.Graph {
	t.Helper()
	offsets := []int64{0, 2, 4, 6, 8}
	adj := []int32{1, 9999, 0, 2, 1, 3, 2, 0}
	weights := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	g, err := graph.FromCSR(offsets, adj, weights, 1, false)
	if err != nil {
		t.Fatalf("building corrupt graph: %v", err)
	}
	return g
}

// detectRecovering runs d.Detect and converts a propagated panic into an
// error-shaped outcome for assertions.
func detectRecovering(d grappolo.Detecter, ctx context.Context, g *grappolo.Graph) (res *grappolo.Result, err error, panicked bool) {
	defer func() {
		if recover() != nil {
			panicked = true
		}
	}()
	res, err = d.Detect(ctx, g)
	return res, err, false
}

// TestNilGraphTyped pins the typed nil-graph contract across every serving
// layer: a nil *Graph is refused up front with ErrNilGraph, before any
// permit, batch slot or admission slot is consumed.
func TestNilGraphTyped(t *testing.T) {
	ctx := context.Background()
	d, err := grappolo.New()
	if err != nil {
		t.Fatal(err)
	}
	pool, err := grappolo.NewPool(1)
	if err != nil {
		t.Fatal(err)
	}
	gd, err := grappolo.NewGuard(pool)
	if err != nil {
		t.Fatal(err)
	}
	layers := []struct {
		tag string
		d   grappolo.Detecter
	}{
		{"Detector", d},
		{"Pool", pool},
		{"Batcher", grappolo.NewBatcher(pool)},
		{"Guard", gd},
	}
	for _, l := range layers {
		if _, err := l.d.Detect(ctx, nil); !errors.Is(err, grappolo.ErrNilGraph) {
			t.Errorf("%s.Detect(nil): err = %v, want ErrNilGraph", l.tag, err)
		}
		if _, err := l.d.DetectInto(ctx, nil, nil); !errors.Is(err, grappolo.ErrNilGraph) {
			t.Errorf("%s.DetectInto(nil): err = %v, want ErrNilGraph", l.tag, err)
		}
	}
	if _, err := grappolo.Detect(ctx, nil); !errors.Is(err, grappolo.ErrNilGraph) {
		t.Errorf("package Detect(nil): err = %v, want ErrNilGraph", err)
	}
	if s := pool.Stats(); s.Led != 0 || s.Canceled != 0 {
		t.Errorf("nil-graph refusals consumed pool state: %+v", s)
	}
	if free := pool.AvailablePermits(); free != 1 {
		t.Errorf("nil-graph refusals leaked a permit: %d free, want 1", free)
	}
}

// TestPoolQuarantinesPanickedEngine pins the quarantine contract: a run
// that panics propagates to the caller (the unpooled behavior), but the
// engine that panicked is dropped — never recycled — its permit is
// released, and the pool keeps serving with a fresh engine.
func TestPoolQuarantinesPanickedEngine(t *testing.T) {
	ctx := context.Background()
	pool, err := grappolo.NewPool(1, grappolo.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	good := cliqueRing(t, 4, 5)
	if _, err := pool.Detect(ctx, good); err != nil {
		t.Fatalf("warm-up detect: %v", err)
	}
	if idle := pool.IdleEngines(); idle != 1 {
		t.Fatalf("after warm-up: %d idle engines, want 1", idle)
	}

	_, _, panicked := detectRecovering(pool, ctx, badGraph(t))
	if !panicked {
		t.Fatal("corrupt graph did not panic the engine run")
	}
	if s := pool.Stats(); s.Faulted != 1 {
		t.Errorf("Stats().Faulted = %d, want 1", s.Faulted)
	}
	if free := pool.AvailablePermits(); free != 1 {
		t.Errorf("panicked run leaked its permit: %d free, want 1", free)
	}
	if idle := pool.IdleEngines(); idle != 0 {
		t.Errorf("panicked engine was recycled: %d idle, want 0", idle)
	}

	// The pool must keep serving: the freed slot lazily creates a fresh
	// engine, and the result is bit-identical to an unpoisoned pool's.
	want, err := grappolo.Detect(ctx, good, grappolo.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := pool.Detect(ctx, good)
	if err != nil {
		t.Fatalf("detect after quarantine: %v", err)
	}
	mustMatch(t, "post-quarantine", res, want)
	if idle := pool.IdleEngines(); idle != 1 {
		t.Errorf("after recovery: %d idle engines, want 1", idle)
	}
}

// TestBatcherLeaderPanicSealsBatch pins the leader-panic seal path: when
// the leader's engine run panics, its followers are released with an error
// matching ErrEngineFault (not left waiting forever), the panic still
// propagates through the leader's own goroutine, and the pool underneath
// neither leaks the permit nor recycles the poisoned engine.
func TestBatcherLeaderPanicSealsBatch(t *testing.T) {
	ctx := context.Background()
	pool, err := grappolo.NewPool(1, grappolo.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	b := grappolo.NewBatcher(pool)
	bad := badGraph(t)

	// Park the engine permit so the leader blocks in pool admission,
	// giving the follower a deterministic window to join the batch.
	if err := pool.HoldEnginePermit(ctx); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var leaderPanicked bool
	var followerErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, _, leaderPanicked = detectRecovering(b, ctx, bad)
	}()
	waitFor(t, "leader to claim the batch", func() bool { return pool.QueuedWaiters() == 1 })
	go func() {
		defer wg.Done()
		_, followerErr, _ = detectRecovering(b, ctx, bad)
	}()
	waitFor(t, "follower to join", func() bool { return b.JoinedFollowers() == 1 })
	pool.ReleaseEnginePermit()
	wg.Wait()

	if !leaderPanicked {
		t.Error("leader did not observe the engine panic")
	}
	if !errors.Is(followerErr, grappolo.ErrEngineFault) {
		t.Errorf("follower err = %v, want an ErrEngineFault match", followerErr)
	}
	if free := pool.AvailablePermits(); free != 1 {
		t.Errorf("leader panic leaked a permit: %d free, want 1", free)
	}
	if idle := pool.IdleEngines(); idle != 0 {
		t.Errorf("panicked engine was recycled: %d idle, want 0", idle)
	}

	// The batcher must remain serviceable after the seal.
	good := cliqueRing(t, 4, 5)
	want, err := grappolo.Detect(ctx, good, grappolo.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Detect(ctx, good)
	if err != nil {
		t.Fatalf("detect after leader panic: %v", err)
	}
	mustMatch(t, "post-seal", res, want)
}

// TestGuardRecoversEnginePanic pins the Guard's quarantine boundary: the
// panic that the bare pool propagates is recovered into a typed
// *EngineFaultError, the Guard's admission slot is released, and serving
// continues.
func TestGuardRecoversEnginePanic(t *testing.T) {
	ctx := context.Background()
	pool, err := grappolo.NewPool(1, grappolo.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	gd, err := grappolo.NewGuard(pool)
	if err != nil {
		t.Fatal(err)
	}
	res, err, panicked := detectRecovering(gd, ctx, badGraph(t))
	if panicked {
		t.Fatal("Guard let the engine panic unwind into the caller")
	}
	if res != nil {
		t.Errorf("faulted request returned a result: %v", res)
	}
	if !errors.Is(err, grappolo.ErrEngineFault) {
		t.Errorf("err = %v, want an ErrEngineFault match", err)
	}
	var fe *grappolo.EngineFaultError
	if !errors.As(err, &fe) || fe.Panic == nil {
		t.Errorf("err = %#v, want *EngineFaultError carrying the panic value", err)
	}
	s := gd.Stats()
	if s.Recovered != 1 || s.Faulted != 1 {
		t.Errorf("Stats: Recovered=%d Faulted=%d, want 1 and 1", s.Recovered, s.Faulted)
	}
	if slots := gd.AdmissionSlots(); gd.Queued() != 0 || pool.AvailablePermits() != slots {
		t.Errorf("fault leaked admission state: queued=%d permits=%d/%d",
			gd.Queued(), pool.AvailablePermits(), slots)
	}

	good := cliqueRing(t, 4, 5)
	want, err := grappolo.Detect(ctx, good, grappolo.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	out, err := gd.Detect(ctx, good)
	if err != nil {
		t.Fatalf("detect after fault: %v", err)
	}
	mustMatch(t, "post-fault", out, want)
	if out.Degraded {
		t.Error("unpressured request marked Degraded")
	}
}

// TestGuardShedsAtDepthBound pins bounded admission: a request that would
// exceed MaxQueueDepth is refused immediately with an ErrOverloaded match,
// while requests within the bound queue normally and are still served.
func TestGuardShedsAtDepthBound(t *testing.T) {
	ctx := context.Background()
	pool, err := grappolo.NewPool(1, grappolo.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	gd, err := grappolo.NewGuard(pool, grappolo.MaxQueueDepth(1))
	if err != nil {
		t.Fatal(err)
	}
	g := cliqueRing(t, 4, 5)
	want, err := grappolo.Detect(ctx, g, grappolo.Workers(1))
	if err != nil {
		t.Fatal(err)
	}

	// Occupy the single admission slot so every request below must queue.
	if err := gd.HoldAdmission(ctx); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	var queuedRes *grappolo.Result
	var queuedErr error
	go func() {
		defer wg.Done()
		queuedRes, queuedErr = gd.Detect(ctx, g) // joins at depth 1: admitted
	}()
	waitFor(t, "first request to queue", func() bool { return gd.Queued() == 1 })

	start := time.Now()
	if _, err := gd.Detect(ctx, g); !errors.Is(err, grappolo.ErrOverloaded) {
		t.Errorf("over-bound request: err = %v, want an ErrOverloaded match", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("shed took %v; depth shedding must not wait", elapsed)
	}
	if gd.Queued() != 1 {
		t.Errorf("shed disturbed the queue: %d queued, want 1", gd.Queued())
	}

	gd.ReleaseAdmission()
	wg.Wait()
	if queuedErr != nil {
		t.Fatalf("within-bound request failed: %v", queuedErr)
	}
	mustMatch(t, "within-bound", queuedRes, want)
	s := gd.Stats()
	if s.Shed != 1 {
		t.Errorf("Stats().Shed = %d, want 1", s.Shed)
	}
}

// TestGuardShedsAtWaitBound pins the queue-wait bound: a request stuck in
// the admission queue past MaxQueueWait is shed with ErrOverloaded, but a
// failure of the caller's OWN context while queued is reported as that
// context's error, never disguised as overload.
func TestGuardShedsAtWaitBound(t *testing.T) {
	ctx := context.Background()
	pool, err := grappolo.NewPool(1, grappolo.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	gd, err := grappolo.NewGuard(pool, grappolo.MaxQueueWait(25*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	g := cliqueRing(t, 4, 5)
	if err := gd.HoldAdmission(ctx); err != nil {
		t.Fatal(err)
	}
	defer gd.ReleaseAdmission()

	start := time.Now()
	if _, err := gd.Detect(ctx, g); !errors.Is(err, grappolo.ErrOverloaded) {
		t.Errorf("wait-bound overrun: err = %v, want an ErrOverloaded match", err)
	} else if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("wait-bound shed took %v", elapsed)
	}
	if s := gd.Stats(); s.Shed != 1 {
		t.Errorf("Stats().Shed = %d, want 1", s.Shed)
	}

	// Caller cancellation wins over the wait bound.
	cctx, cancel := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() {
		_, err := gd.Detect(cctx, g)
		done <- err
	}()
	waitFor(t, "canceled request to queue", func() bool { return gd.Queued() == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) || errors.Is(err, grappolo.ErrOverloaded) {
		t.Errorf("canceled-while-queued: err = %v, want context.Canceled (not overload)", err)
	}
	if s := gd.Stats(); s.Shed != 1 {
		t.Errorf("caller cancellation was counted as a shed: Shed = %d", s.Shed)
	}
}

// TestGuardDefaultDeadline pins the deadline budget: a context without a
// deadline gets the Guard's default (here an immediately-expiring one, so
// the engine's cooperative cancellation surfaces DeadlineExceeded), while
// a caller-supplied deadline is used as-is and never tightened.
func TestGuardDefaultDeadline(t *testing.T) {
	ctx := context.Background()
	pool, err := grappolo.NewPool(1, grappolo.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	gd, err := grappolo.NewGuard(pool, grappolo.DetectDeadline(time.Nanosecond))
	if err != nil {
		t.Fatal(err)
	}
	g := cliqueRing(t, 6, 6)

	if _, err := gd.Detect(ctx, g); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("no caller deadline: err = %v, want DeadlineExceeded from the default budget", err)
	}

	// A generous caller deadline overrides the Guard's (tighter) default.
	dctx, cancel := context.WithTimeout(ctx, time.Minute)
	defer cancel()
	res, err := gd.Detect(dctx, g)
	if err != nil {
		t.Fatalf("caller deadline was tightened by the default budget: %v", err)
	}
	want, err := grappolo.Detect(ctx, g, grappolo.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	mustMatch(t, "caller-deadline", res, want)
}

// TestGuardDegradesUnderPressure pins graceful degradation: a request that
// queues at the configured depth is served by the degraded engine set —
// its result is exactly what the documented default degraded profile
// produces, marked Degraded — and full-quality serving resumes once the
// queue drains.
func TestGuardDegradesUnderPressure(t *testing.T) {
	ctx := context.Background()
	pool, err := grappolo.NewPool(1, grappolo.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	gd, err := grappolo.NewGuard(pool, grappolo.DegradeAtDepth(1))
	if err != nil {
		t.Fatal(err)
	}
	g := cliqueRing(t, 8, 6)
	wantFull, err := grappolo.Detect(ctx, g, grappolo.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	// The documented default degraded profile, layered on the pool's own
	// options exactly as NewGuard derives it.
	wantFast, err := grappolo.Detect(ctx, g, grappolo.Workers(1),
		grappolo.MaxPhases(2), grappolo.MaxIterations(8), grappolo.Thresholds(5e-2, 1e-3))
	if err != nil {
		t.Fatal(err)
	}

	// Unpressured: full quality, no Degraded mark.
	res, err := gd.Detect(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	mustMatch(t, "unpressured", res, wantFull)
	if res.Degraded {
		t.Error("unpressured result marked Degraded")
	}

	// Pressured: occupy the admission slot so the next request queues at
	// depth 1, the degradation threshold.
	if err := gd.HoldAdmission(ctx); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	var degRes *grappolo.Result
	var degErr error
	go func() {
		defer wg.Done()
		degRes, degErr = gd.Detect(ctx, g)
	}()
	waitFor(t, "pressured request to queue", func() bool { return gd.Queued() == 1 })
	gd.ReleaseAdmission()
	wg.Wait()
	if degErr != nil {
		t.Fatalf("pressured request failed: %v", degErr)
	}
	mustMatch(t, "degraded", degRes, wantFast)
	if !degRes.Degraded {
		t.Error("pressured result not marked Degraded")
	}

	// Pressure gone: full quality again.
	res, err = gd.Detect(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	mustMatch(t, "recovered", res, wantFull)
	if res.Degraded {
		t.Error("post-pressure result still marked Degraded")
	}

	s := gd.Stats()
	if s.Degraded != 1 {
		t.Errorf("Stats().Degraded = %d, want 1", s.Degraded)
	}
	if s.Led != 3 {
		t.Errorf("Stats().Led = %d, want 3 (2 primary + 1 degraded)", s.Led)
	}
	if s.Shed != 0 {
		t.Errorf("Stats().Shed = %d, want 0 (degradation is not shedding)", s.Shed)
	}
}

// TestGuardOverBatcherCoalesces pins the MaxInFlight interplay: with an
// admission bound wider than the pool, duplicate requests pass through the
// Guard concurrently and coalesce in the Batcher — followers consume no
// engine — and every caller still gets the bit-identical result.
func TestGuardOverBatcherCoalesces(t *testing.T) {
	ctx := context.Background()
	pool, err := grappolo.NewPool(1)
	if err != nil {
		t.Fatal(err)
	}
	b := grappolo.NewBatcher(pool)
	gd, err := grappolo.NewGuard(b, grappolo.MaxInFlight(4))
	if err != nil {
		t.Fatal(err)
	}
	g := cliqueRing(t, 8, 6)
	want, err := grappolo.Detect(ctx, g)
	if err != nil {
		t.Fatal(err)
	}

	// Park the engine so all four duplicates are in flight before any runs.
	if err := pool.HoldEnginePermit(ctx); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	results := make([]*grappolo.Result, 4)
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = gd.Detect(ctx, g)
		}()
	}
	waitFor(t, "duplicates to coalesce", func() bool { return b.JoinedFollowers() == 3 })
	pool.ReleaseEnginePermit()
	wg.Wait()

	for i := range results {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		mustMatch(t, "coalesced", results[i], want)
	}
	s := gd.Stats()
	if s.Led != 1 || s.Batched != 3 {
		t.Errorf("Stats: Led=%d Batched=%d, want 1 leader and 3 batched", s.Led, s.Batched)
	}
}

// TestGuardOptionValidation pins the constructor contract: invalid bounds
// and incoherent combinations are errors, never silently coerced.
func TestGuardOptionValidation(t *testing.T) {
	pool, err := grappolo.NewPool(1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		tag  string
		opts []grappolo.GuardOption
	}{
		{"negative MaxQueueDepth", []grappolo.GuardOption{grappolo.MaxQueueDepth(-1)}},
		{"zero MaxQueueWait", []grappolo.GuardOption{grappolo.MaxQueueWait(0)}},
		{"zero DetectDeadline", []grappolo.GuardOption{grappolo.DetectDeadline(0)}},
		{"zero DegradeAtDepth", []grappolo.GuardOption{grappolo.DegradeAtDepth(0)}},
		{"empty DegradeProfile", []grappolo.GuardOption{grappolo.DegradeAtDepth(1), grappolo.DegradeProfile()}},
		{"DegradeProfile without DegradeAtDepth", []grappolo.GuardOption{grappolo.DegradeProfile(grappolo.MaxPhases(1))}},
		{"invalid degraded combination", []grappolo.GuardOption{
			grappolo.DegradeAtDepth(1), grappolo.DegradeProfile(grappolo.MaxIterations(-1)),
		}},
		{"zero MaxInFlight", []grappolo.GuardOption{grappolo.MaxInFlight(0)}},
		{"nil GuardOption", []grappolo.GuardOption{nil}},
	}
	for _, c := range cases {
		if _, err := grappolo.NewGuard(pool, c.opts...); err == nil {
			t.Errorf("%s: NewGuard succeeded, want error", c.tag)
		}
	}
	d, err := grappolo.New()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := grappolo.NewGuard(d); err == nil {
		t.Error("NewGuard over a bare Detector succeeded, want error (no pool to guard)")
	}
}
