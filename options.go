package grappolo

import (
	"fmt"

	"grappolo/internal/core"
)

// Option configures a Detector (or a Pool, or a Stream's full re-detections).
// Options are applied in order by New; an invalid value or an invalid
// combination makes New return an error instead of silently coercing the
// configuration — the public API never falls back to a default the caller
// did not ask for.
type Option func(*config) error

// config accumulates option applications before validation. It wraps the
// internal core.Options so the public surface stays decoupled from the
// internal struct layout.
type config struct {
	opts core.Options
}

// ColoringKind selects the graph-coloring preprocessing applied before the
// parallel sweeps (§5.2 of the paper): vertices of one color set move
// concurrently, sets are processed in sequence.
type ColoringKind int

const (
	// NoColoring disables coloring preprocessing (the paper's "baseline"
	// variants): every sweep reads the previous iteration's snapshot.
	NoColoring ColoringKind = iota
	// Distance1 is the default speculate-and-resolve greedy distance-1
	// coloring — the paper's headline configuration.
	Distance1
	// Distance2 colors distance-2 neighborhoods: more colors, less
	// parallelism per set, stricter isolation between concurrent movers.
	Distance2
	// JonesPlassmann selects the Jones–Plassmann parallel coloring instead
	// of the greedy — exposed for ablation of the preprocessing choice.
	JonesPlassmann
)

// BalanceMode selects whether (and by which load metric) color sets are
// rebalanced after coloring — the paper's proposed fix for skewed color-set
// sizes (§6.2).
type BalanceMode int

const (
	// BalanceOff applies no rebalancing.
	BalanceOff BalanceMode = iota
	// BalanceVertices evens per-set vertex counts.
	BalanceVertices
	// BalanceArcs evens per-set total arc counts — the metric the colored
	// sweep's work is actually proportional to.
	BalanceArcs
	// BalanceAuto measures each phase's arc-load skew and applies the arc
	// repair only when it exceeds the AutoBalanceThreshold.
	BalanceAuto
)

// Workers sets the number of parallel workers used by Detect. Zero (the
// default) selects all CPUs; negative counts are an error.
func Workers(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("grappolo: negative worker count %d (0 selects all CPUs)", n)
		}
		c.opts.Workers = n
		return nil
	}
}

// VertexFollowing enables the VF preprocessing step (§5.3): single-degree
// vertices are merged into their neighbor before the first phase. Only
// valid under the modularity objective.
func VertexFollowing() Option {
	return func(c *config) error {
		c.opts.VertexFollowing = true
		return nil
	}
}

// VFChains extends VertexFollowing (which it implies) with repeated passes
// that compress hanging chains until no single-degree vertex remains.
func VFChains() Option {
	return func(c *config) error {
		c.opts.VertexFollowing = true
		c.opts.VFChainCompression = true
		return nil
	}
}

// Coloring enables coloring preprocessing with the given algorithm under the
// paper's multi-phase policy: phases stay colored while they deliver at
// least the colored threshold of gain and their input exceeds the vertex
// cutoff. Coloring(NoColoring) disables preprocessing explicitly.
func Coloring(k ColoringKind) Option {
	return func(c *config) error {
		c.opts.Distance2Coloring = false
		c.opts.JonesPlassmann = false
		switch k {
		case NoColoring:
			c.opts.Coloring = core.ColorOff
			return nil
		case Distance1:
		case Distance2:
			c.opts.Distance2Coloring = true
		case JonesPlassmann:
			c.opts.JonesPlassmann = true
		default:
			return fmt.Errorf("grappolo: unknown ColoringKind %d", k)
		}
		c.opts.Coloring = core.ColorMultiPhase
		return nil
	}
}

// FirstPhaseColoring restricts an enabled coloring to the first phase only
// (the paper's Table 4 comparison scheme). Requires Coloring.
func FirstPhaseColoring() Option {
	return func(c *config) error {
		if c.opts.Coloring == core.ColorOff {
			return fmt.Errorf("grappolo: FirstPhaseColoring requires Coloring(...) before it")
		}
		c.opts.Coloring = core.ColorFirstPhase
		return nil
	}
}

// ColoringCutoff stops coloring once a phase's input has fewer than n
// vertices (default 100000, the paper's setting). n must be positive.
func ColoringCutoff(n int) Option {
	return func(c *config) error {
		if n <= 0 {
			return fmt.Errorf("grappolo: ColoringCutoff must be positive, got %d", n)
		}
		c.opts.ColoringVertexCutoff = n
		return nil
	}
}

// Balance selects the color-set rebalancing mode (§6.2).
func Balance(m BalanceMode) Option {
	return func(c *config) error {
		switch m {
		case BalanceOff:
			c.opts.ColorBalance = core.BalanceOff
		case BalanceVertices:
			c.opts.ColorBalance = core.BalanceVertices
		case BalanceArcs:
			c.opts.ColorBalance = core.BalanceArcs
		case BalanceAuto:
			c.opts.ColorBalance = core.BalanceAuto
		default:
			return fmt.Errorf("grappolo: unknown BalanceMode %d", m)
		}
		return nil
	}
}

// AutoBalanceThreshold sets the per-phase arc-load RSD above which
// Balance(BalanceAuto) applies the arc repair (default 0.5). Must be
// positive.
func AutoBalanceThreshold(rsd float64) Option {
	return func(c *config) error {
		if rsd <= 0 {
			return fmt.Errorf("grappolo: AutoBalanceThreshold must be positive, got %v", rsd)
		}
		c.opts.AutoBalanceArcRSD = rsd
		return nil
	}
}

// Thresholds sets the modularity-gain termination thresholds: colored for
// colored phases (paper default 1e-2), final for uncolored phases (paper
// default 1e-6). Zero keeps a default; negative values are an error.
func Thresholds(colored, final float64) Option {
	return func(c *config) error {
		if colored < 0 || final < 0 {
			return fmt.Errorf("grappolo: negative threshold (colored=%v, final=%v)", colored, final)
		}
		c.opts.ColoredThreshold = colored
		c.opts.FinalThreshold = final
		return nil
	}
}

// Resolution sets the γ multiplier on modularity's null-model term
// (1 = standard modularity). Must be positive.
func Resolution(gamma float64) Option {
	return func(c *config) error {
		if gamma <= 0 {
			return fmt.Errorf("grappolo: Resolution must be positive, got %v", gamma)
		}
		c.opts.Resolution = gamma
		return nil
	}
}

// CPM switches the objective to the constant Potts model with resolution
// gamma (> 0). Incompatible with VertexFollowing/VFChains: Lemma 3 (the
// VF optimality argument) is a modularity result.
func CPM(gamma float64) Option {
	return func(c *config) error {
		if gamma <= 0 {
			return fmt.Errorf("grappolo: CPM resolution must be positive, got %v", gamma)
		}
		c.opts.Objective = core.ObjCPM
		c.opts.CPMGamma = gamma
		return nil
	}
}

// MaxIterations caps iterations per phase (0 = unlimited).
func MaxIterations(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("grappolo: negative MaxIterations %d", n)
		}
		c.opts.MaxIterations = n
		return nil
	}
}

// MaxPhases caps the number of phases (0 = unlimited).
func MaxPhases(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("grappolo: negative MaxPhases %d", n)
		}
		c.opts.MaxPhases = n
		return nil
	}
}

// KeepHierarchy records the original-vertex community assignment after each
// phase in Result.Levels — the dendrogram the Louvain method produces.
func KeepHierarchy() Option {
	return func(c *config) error {
		c.opts.KeepHierarchy = true
		return nil
	}
}

// SerialRenumber forces the community-renumbering step of the rebuild to
// run serially, reproducing the paper's implementation exactly.
func SerialRenumber() Option {
	return func(c *config) error {
		c.opts.SerialRenumber = true
		return nil
	}
}

// NoMinLabel disables the minimum-label tie-breaks (ablation only; the
// paper's baseline always applies them).
func NoMinLabel() Option {
	return func(c *config) error {
		c.opts.DisableMinLabel = true
		return nil
	}
}

// Async switches iterations to asynchronous live-state local moves — the
// PLM emulation of §7. Incompatible with Coloring. Output varies with
// scheduling; combine with NoMinLabel for the faithful PLM comparison.
func Async() Option {
	return func(c *config) error {
		c.opts.Async = true
		return nil
	}
}

// LayoutKind selects the CSR arc storage layout the sweep kernels consume
// on the coarse graphs the detector builds between phases. Purely a
// memory-layout choice: results are bit-identical under every value.
type LayoutKind int

const (
	// LayoutAuto (the default) inherits the input graph's layout.
	LayoutAuto LayoutKind = iota
	// LayoutSplit forces the classic two-stream CSR (ids and weights in
	// separate arrays; lowest memory).
	LayoutSplit
	// LayoutInterleaved forces the packed one-stream CSR (16-byte
	// (id, weight) arcs; fastest sweeps at +16 bytes per arc).
	LayoutInterleaved
)

// ArcLayout selects the arc storage layout for the coarse graphs built
// between phases. The caller's input graph is never converted in place —
// pick its layout at construction (FromEdgesLayout).
func ArcLayout(k LayoutKind) Option {
	return func(c *config) error {
		switch k {
		case LayoutAuto:
			c.opts.ArcLayout = core.ArcLayoutAuto
		case LayoutSplit:
			c.opts.ArcLayout = core.ArcLayoutSplit
		case LayoutInterleaved:
			c.opts.ArcLayout = core.ArcLayoutInterleaved
		default:
			return fmt.Errorf("grappolo: unknown LayoutKind %d", k)
		}
		return nil
	}
}

// buildOptions applies opts in order and validates the resulting
// configuration, returning the internal options both raw (for engines,
// which apply the paper defaults themselves) and an error carrying the
// first invalid setting.
func buildOptions(opts []Option) (core.Options, error) {
	var c config
	if err := applyOptions(&c, opts); err != nil {
		return core.Options{}, err
	}
	if err := validateConfig(&c); err != nil {
		return core.Options{}, err
	}
	return c.opts, nil
}

// applyOptions applies opts to c in order. Split from buildOptions so the
// Guard can layer a degraded profile's overrides on top of a pool's
// already-built options before re-validating the combination.
func applyOptions(c *config, opts []Option) error {
	for _, o := range opts {
		if o == nil {
			return fmt.Errorf("grappolo: nil Option")
		}
		if err := o(c); err != nil {
			return err
		}
	}
	return nil
}

// validateConfig runs the core validation plus the public-surface
// coherence checks: an option that only acts when coloring is enabled must
// not silently do nothing (the same contract Validate enforces for
// VFChainCompression-without-VertexFollowing).
func validateConfig(c *config) error {
	if err := c.opts.Validate(); err != nil {
		return err
	}
	if c.opts.Coloring == core.ColorOff {
		if c.opts.ColorBalance != core.BalanceOff {
			return fmt.Errorf("grappolo: Balance requires Coloring(...)")
		}
		if c.opts.ColoringVertexCutoff != 0 {
			return fmt.Errorf("grappolo: ColoringCutoff requires Coloring(...)")
		}
	}
	if c.opts.AutoBalanceArcRSD != 0 && c.opts.ColorBalance != core.BalanceAuto {
		return fmt.Errorf("grappolo: AutoBalanceThreshold requires Balance(BalanceAuto)")
	}
	return nil
}
