//go:build faultinject

package grappolo_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"grappolo"
	"grappolo/internal/faults"
)

// This file is the chaos layer of the robustness work: it builds only
// under the faultinject tag, arms seeded deterministic fault plans against
// the full serving stack (Guard → Batcher → Pool → Engine), and asserts
// the stack's invariants hold while faults are striking — no leaked
// permits or goroutines, no cross-wired results, typed errors for every
// failure class, and full recovery once the plan is disarmed. Run with:
//
//	go test -race -tags faultinject -run 'Chaos|FaultInject' .

// armPlan installs plan and registers disarming as cleanup, so a failing
// assertion never leaks an armed plan into the next test.
func armPlan(t *testing.T, plan *faults.Plan) {
	t.Helper()
	faults.Arm(plan)
	t.Cleanup(func() { faults.Arm(nil) })
}

// resultMismatch is a goroutine-safe mustMatch: it reports the differences
// as a string ("" when bit-identical) instead of calling into testing.T,
// so chaos workers can record verdicts for the main goroutine to judge.
func resultMismatch(res, want *grappolo.Result) string {
	if res == nil {
		return "nil result"
	}
	if res.Modularity != want.Modularity ||
		res.NumCommunities != want.NumCommunities ||
		res.TotalIterations != want.TotalIterations {
		return fmt.Sprintf("Q=%v nc=%d iters=%d, want Q=%v nc=%d iters=%d",
			res.Modularity, res.NumCommunities, res.TotalIterations,
			want.Modularity, want.NumCommunities, want.TotalIterations)
	}
	if len(res.Membership) != len(want.Membership) {
		return fmt.Sprintf("membership length %d, want %d (cross-wired result?)",
			len(res.Membership), len(want.Membership))
	}
	for i := range res.Membership {
		if res.Membership[i] != want.Membership[i] {
			return fmt.Sprintf("membership[%d] = %d, want %d", i, res.Membership[i], want.Membership[i])
		}
	}
	return ""
}

// waitSettled waits for the goroutine count to drain back to (or below)
// the given baseline plus slack; the runtime needs a beat to reap exited
// goroutines, so this polls rather than asserting instantaneously.
func waitSettled(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC() // nudges reaping of exited goroutines
		n := runtime.NumGoroutine()
		if n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d live, baseline %d", n, baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosGuardSoak drives mixed duplicate/unique traffic through the
// full stack while a seeded plan injects panics, latency, and forced
// cancellations at every probe site, then disarms and asserts the stack
// recovered completely. Every request outcome must fall into a typed
// class; anything else is a verdict failure.
func TestChaosGuardSoak(t *testing.T) {
	const (
		workers    = 8
		perWorker  = 25
		poolSize   = 2
		maxWait    = 25 * time.Millisecond
		shedBudget = maxWait + 5*time.Second // generous CI-scheduling slack
	)
	ctx := context.Background()
	graphs := []*grappolo.Graph{
		cliqueRing(t, 6, 5),
		cliqueRing(t, 8, 4),
		cliqueRing(t, 5, 8),
	}
	// Bit-identical references for both quality profiles, computed before
	// any plan is armed. The degraded reference is the documented default
	// degraded profile layered on the pool's (default) options.
	wantFull := make([]*grappolo.Result, len(graphs))
	wantFast := make([]*grappolo.Result, len(graphs))
	for i, g := range graphs {
		var err error
		if wantFull[i], err = grappolo.Detect(ctx, g); err != nil {
			t.Fatal(err)
		}
		if wantFast[i], err = grappolo.Detect(ctx, g,
			grappolo.MaxPhases(2), grappolo.MaxIterations(8), grappolo.Thresholds(5e-2, 1e-3)); err != nil {
			t.Fatal(err)
		}
	}

	pool, err := grappolo.NewPool(poolSize)
	if err != nil {
		t.Fatal(err)
	}
	// MaxInFlight deliberately below the worker count and a slowed pool
	// serve (below) so the admission queue really builds: the soak must
	// exercise ALL outcome classes — degraded serves, depth and wait
	// sheds — not just the happy path with sprinkled panics.
	gd, err := grappolo.NewGuard(grappolo.NewBatcher(pool),
		grappolo.MaxInFlight(2),
		grappolo.MaxQueueDepth(3),
		grappolo.MaxQueueWait(maxWait),
		grappolo.DetectDeadline(5*time.Second),
		grappolo.DegradeAtDepth(2))
	if err != nil {
		t.Fatal(err)
	}

	baseline := runtime.NumGoroutine()
	armPlan(t, &faults.Plan{
		Seed: 42,
		PanicEvery: func() (pe [faults.NumPoints]int) {
			pe[faults.EngineRun] = 7
			pe[faults.PoolServe] = 9
			pe[faults.BatchLead] = 11
			return
		}(),
		SlowEvery: func() (se [faults.NumPoints]int) {
			se[faults.PoolServe] = 2
			se[faults.BatchLead] = 5
			return
		}(),
		SlowNanos: int64(5 * time.Millisecond),
		CancelEvery: func() (ce [faults.NumPoints]int) {
			ce[faults.EngineBarrier] = 50
			return
		}(),
	})

	var succeeded, degraded, shed, faulted, ctxErrs atomic.Int64
	var maxShedNanos atomic.Int64
	var mu sync.Mutex
	var verdicts []string
	report := func(v string) {
		mu.Lock()
		verdicts = append(verdicts, v)
		mu.Unlock()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			var res *grappolo.Result
			for j := 0; j < perWorker; j++ {
				gi := (w + j) % len(graphs) // overlapping cycles: plenty of duplicates
				start := time.Now()
				out, err := gd.DetectInto(ctx, graphs[gi], res)
				elapsed := time.Since(start)
				switch {
				case err == nil:
					res = out
					want := wantFull[gi]
					if out.Degraded {
						want = wantFast[gi]
						degraded.Add(1)
					}
					if d := resultMismatch(out, want); d != "" {
						report(fmt.Sprintf("worker %d req %d (graph %d, degraded=%v): %s", w, j, gi, out.Degraded, d))
					}
					succeeded.Add(1)
				case errors.Is(err, grappolo.ErrOverloaded):
					shed.Add(1)
					for {
						cur := maxShedNanos.Load()
						if int64(elapsed) <= cur || maxShedNanos.CompareAndSwap(cur, int64(elapsed)) {
							break
						}
					}
				case errors.Is(err, grappolo.ErrEngineFault):
					faulted.Add(1)
				case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
					ctxErrs.Add(1)
				default:
					report(fmt.Sprintf("worker %d req %d: unclassified error %v", w, j, err))
				}
			}
		}()
	}
	wg.Wait()
	faults.Arm(nil)

	for _, v := range verdicts {
		t.Error(v)
	}
	total := succeeded.Load() + shed.Load() + faulted.Load() + ctxErrs.Load()
	if total != workers*perWorker {
		t.Errorf("classified %d outcomes, want %d", total, workers*perWorker)
	}
	t.Logf("soak: %d ok (%d degraded), %d shed, %d faulted, %d ctx errors",
		succeeded.Load(), degraded.Load(), shed.Load(), faulted.Load(), ctxErrs.Load())
	if max := time.Duration(maxShedNanos.Load()); max > shedBudget {
		t.Errorf("slowest shed took %v, want <= %v (shedding must stay prompt under faults)", max, shedBudget)
	}

	s := gd.Stats()
	if s.Shed != shed.Load() {
		t.Errorf("Stats().Shed = %d, workers observed %d", s.Shed, shed.Load())
	}
	if s.Degraded != degraded.Load() {
		t.Errorf("Stats().Degraded = %d, workers observed %d", s.Degraded, degraded.Load())
	}
	if s.Recovered > faulted.Load() {
		t.Errorf("Stats().Recovered = %d > %d fault outcomes", s.Recovered, faulted.Load())
	}

	// Recovery: zero leaked permits or admission slots, goroutines settle,
	// and a clean full-quality pass succeeds on every graph.
	if free := pool.AvailablePermits(); free != poolSize {
		t.Errorf("leaked engine permits: %d free, want %d", free, poolSize)
	}
	if q := gd.Queued(); q != 0 {
		t.Errorf("leaked admission waiters: %d queued", q)
	}
	waitSettled(t, baseline)
	for i, g := range graphs {
		out, err := gd.Detect(ctx, g)
		if err != nil {
			t.Fatalf("clean pass graph %d: %v", i, err)
		}
		if out.Degraded {
			t.Errorf("clean pass graph %d marked Degraded", i)
		}
		if d := resultMismatch(out, wantFull[i]); d != "" {
			t.Errorf("clean pass graph %d: %s", i, d)
		}
	}
}

// TestFaultInjectEngineRunPanic pins the quarantine chain for an injected
// panic at the engine-run probe: the Guard returns a typed fault carrying
// the Injected value, the pool quarantines the engine, nothing leaks, and
// disarming restores clean serving.
func TestFaultInjectEngineRunPanic(t *testing.T) {
	ctx := context.Background()
	pool, err := grappolo.NewPool(1)
	if err != nil {
		t.Fatal(err)
	}
	gd, err := grappolo.NewGuard(pool)
	if err != nil {
		t.Fatal(err)
	}
	g := cliqueRing(t, 4, 5)
	armPlan(t, &faults.Plan{PanicEvery: func() (pe [faults.NumPoints]int) {
		pe[faults.EngineRun] = 1
		return
	}()})

	_, err = gd.Detect(ctx, g)
	if !errors.Is(err, grappolo.ErrEngineFault) {
		t.Fatalf("err = %v, want an ErrEngineFault match", err)
	}
	var fe *grappolo.EngineFaultError
	if !errors.As(err, &fe) {
		t.Fatalf("err = %#v, want *EngineFaultError", err)
	}
	inj, ok := fe.Panic.(faults.Injected)
	if !ok || inj.Point != faults.EngineRun {
		t.Errorf("recovered panic = %#v, want Injected at EngineRun", fe.Panic)
	}
	if s := gd.Stats(); s.Recovered != 1 || s.Faulted != 1 {
		t.Errorf("Stats: Recovered=%d Faulted=%d, want 1 and 1", s.Recovered, s.Faulted)
	}
	if free := pool.AvailablePermits(); free != 1 {
		t.Errorf("leaked permit: %d free, want 1", free)
	}

	faults.Arm(nil)
	want, err := grappolo.Detect(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	out, err := gd.Detect(ctx, g)
	if err != nil {
		t.Fatalf("detect after disarm: %v", err)
	}
	if d := resultMismatch(out, want); d != "" {
		t.Errorf("post-disarm result: %s", d)
	}
}

// TestFaultInjectLeaderPanicPrePool pins the batch-lead probe: a panic
// struck BEFORE the leader reaches the pool must seal the batch and
// surface as a typed fault, without consuming a pool permit or
// quarantining any engine (none was involved).
func TestFaultInjectLeaderPanicPrePool(t *testing.T) {
	ctx := context.Background()
	pool, err := grappolo.NewPool(1)
	if err != nil {
		t.Fatal(err)
	}
	gd, err := grappolo.NewGuard(grappolo.NewBatcher(pool))
	if err != nil {
		t.Fatal(err)
	}
	g := cliqueRing(t, 4, 5)
	armPlan(t, &faults.Plan{PanicEvery: func() (pe [faults.NumPoints]int) {
		pe[faults.BatchLead] = 1
		return
	}()})

	_, err = gd.Detect(ctx, g)
	if !errors.Is(err, grappolo.ErrEngineFault) {
		t.Fatalf("err = %v, want an ErrEngineFault match", err)
	}
	var fe *grappolo.EngineFaultError
	if !errors.As(err, &fe) {
		t.Fatalf("err = %#v, want *EngineFaultError", err)
	}
	if inj, ok := fe.Panic.(faults.Injected); !ok || inj.Point != faults.BatchLead {
		t.Errorf("recovered panic = %#v, want Injected at BatchLead", fe.Panic)
	}
	if s := pool.Stats(); s.Faulted != 0 || s.Led != 0 {
		t.Errorf("pre-pool panic touched the pool: %+v", s)
	}
	if free := pool.AvailablePermits(); free != 1 {
		t.Errorf("pre-pool panic consumed a permit: %d free, want 1", free)
	}

	faults.Arm(nil)
	if _, err := gd.Detect(ctx, g); err != nil {
		t.Fatalf("detect after disarm: %v", err)
	}
}

// TestFaultInjectBarrierCancel pins the forced-cancellation probe: a
// strike at an engine barrier must behave exactly like a caller-side
// cancellation — a context error, a Canceled count, a reusable engine.
func TestFaultInjectBarrierCancel(t *testing.T) {
	ctx := context.Background()
	pool, err := grappolo.NewPool(1)
	if err != nil {
		t.Fatal(err)
	}
	g := cliqueRing(t, 6, 5)
	armPlan(t, &faults.Plan{CancelEvery: func() (ce [faults.NumPoints]int) {
		ce[faults.EngineBarrier] = 1
		return
	}()})

	if _, err := pool.Detect(ctx, g); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled from the injected barrier strike", err)
	}
	if s := pool.Stats(); s.Canceled != 1 || s.Faulted != 0 {
		t.Errorf("Stats: Canceled=%d Faulted=%d, want 1 and 0 (cancellation is not a fault)", s.Canceled, s.Faulted)
	}
	if free := pool.AvailablePermits(); free != 1 {
		t.Errorf("canceled run leaked its permit: %d free, want 1", free)
	}

	faults.Arm(nil)
	want, err := grappolo.Detect(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	out, err := pool.Detect(ctx, g) // the canceled engine must still be sound
	if err != nil {
		t.Fatalf("detect after disarm: %v", err)
	}
	if d := resultMismatch(out, want); d != "" {
		t.Errorf("post-cancel result: %s", d)
	}
}

// TestFaultInjectMidQueueCancellation is the queued-cancellation leak
// regression under injected latency: with every pool serve slowed, a
// waiter canceled from the MIDDLE of the admission queue must return its
// context error promptly, pass its turn without consuming a permit, and
// leave the queue draining normally for the requests around it.
func TestFaultInjectMidQueueCancellation(t *testing.T) {
	ctx := context.Background()
	pool, err := grappolo.NewPool(1)
	if err != nil {
		t.Fatal(err)
	}
	b := grappolo.NewBatcher(pool)
	// Four distinct graphs: unique fingerprints, so nothing coalesces and
	// all four requests contend for the single slowed engine.
	graphs := []*grappolo.Graph{
		cliqueRing(t, 3, 4), cliqueRing(t, 4, 4), cliqueRing(t, 5, 4), cliqueRing(t, 6, 4),
	}
	baseline := runtime.NumGoroutine()
	armPlan(t, &faults.Plan{
		SlowEvery: func() (se [faults.NumPoints]int) {
			se[faults.PoolServe] = 1
			return
		}(),
		SlowNanos: int64(40 * time.Millisecond),
	})

	errs := make([]error, len(graphs))
	var wg sync.WaitGroup
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	launch := func(i int, reqCtx context.Context) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = b.Detect(reqCtx, graphs[i])
		}()
	}
	launch(0, ctx) // takes the permit, sleeps in serve
	waitFor(t, "first request to hold the engine", func() bool { return pool.AvailablePermits() == 0 })
	launch(1, ctx)
	waitFor(t, "second request to queue", func() bool { return pool.QueuedWaiters() == 1 })
	launch(2, cctx) // the mid-queue victim
	waitFor(t, "third request to queue", func() bool { return pool.QueuedWaiters() == 2 })
	launch(3, ctx)
	waitFor(t, "fourth request to queue", func() bool { return pool.QueuedWaiters() == 3 })

	start := time.Now()
	cancel()
	waitFor(t, "mid-queue waiter to withdraw", func() bool { return pool.QueuedWaiters() == 2 })
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("mid-queue withdrawal took %v", elapsed)
	}
	wg.Wait()

	for i, err := range errs {
		if i == 2 {
			if !errors.Is(err, context.Canceled) {
				t.Errorf("victim err = %v, want context.Canceled", err)
			}
			continue
		}
		if err != nil {
			t.Errorf("request %d failed: %v", i, err)
		}
	}
	// The victim withdrew before reaching the serve probe: exactly the
	// three survivors struck the injected slowdown.
	if hits := faults.Hits(faults.PoolServe); hits != 3 {
		t.Errorf("PoolServe hits = %d, want 3 (victim must not reach serve)", hits)
	}
	if free := pool.AvailablePermits(); free != 1 {
		t.Errorf("leaked permit: %d free, want 1", free)
	}
	if q := pool.QueuedWaiters(); q != 0 {
		t.Errorf("queue did not drain: %d waiters", q)
	}
	waitSettled(t, baseline)
}
