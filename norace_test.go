//go:build !race

package grappolo_test

// raceEnabled gates allocation-regression tests: the race detector's
// instrumentation allocates, so zero-alloc assertions only hold without it.
const raceEnabled = false
